// tfsn_cli: command-line front end to the library.
//
//   tfsn_cli stats   --dataset=slashdot | --graph=g.edges
//   tfsn_cli compat  --dataset=slashdot --u=3 --v=17 [--relation=spm]
//   tfsn_cli team    --dataset=epinions --scale=0.05 --skills=1,4,9
//                    [--relation=spm] [--algorithm=lcmd|lcmc|random] [--topk=3]
//                    [--shards=S] [--shard-strategy=hash|range]  (alias: form)
//   tfsn_cli serve   --dataset=epinions --scale=0.08 --qps=50 --duration=5
//                    [--workers=2] [--batch-cap=16] [--seed=1] [--replay]
//                    [--compress=on] [--spill-dir=D] [--prewarm-frac=0.1]
//                    [--deadline-ms=B] [--shed=off|admission|queue]
//                    [--fault=point:schedule[,point:schedule...]]
//   tfsn_cli export  --dataset=wikipedia --out=wiki.edges --skills_out=wiki.skills
//
// Global performance flags: --threads=N computes oracle rows (and the
// stats diameter sweep) on N workers sharing one row cache (0 = hardware
// concurrency / TFSN_THREADS); --cache-mb=M bounds that cache's byte
// budget (default 256). The cache is a tiered row store (row_cache.h):
// --compress=on keeps rows compressed in memory (the budget then buys
// proportionally more rows), --spill-dir=D spills evictions to an on-disk
// store consulted before recomputing, and `serve --prewarm-frac=F`
// bulk-computes the hottest F of holders before traffic. All three are
// representation/locality knobs only — teams and the --replay digest are
// bit-identical across every combination. `team` additionally takes --seed-threads=N to run
// each formation's seed loop on N workers over the task-local dense view
// (results are identical for every setting) and --eval-path=auto|view|
// oracle to pin the evaluation path.
//
// Robustness knobs (see README "Robustness"): `serve --deadline-ms=B`
// stamps every generated request with a B-millisecond SLO budget;
// --shed picks the enforcement tier (off = deadlines are advisory,
// admission = reject infeasible deadlines at the front door, queue =
// admission + expired-in-queue shedding + the degradation ladder); and
// --fault=point:schedule arms deterministic fault injection (requires a
// -DTFSN_FAULTS=ON build; exits 2 otherwise). The --replay digest mixes
// only successful, non-degraded responses, so it stays bit-identical
// under injected faults and shed traffic.
//
// Exit codes: 0 success, 1 usage error, 2 no team found / fault
// injection not compiled in.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "src/exp/experiments.h"
#include "src/skills/skills_io.h"
#include "src/tfsn.h"
#include "src/util/fault_injection.h"

namespace {

using namespace tfsn;

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tfsn_cli <stats|compat|team|form|serve|export> "
               "[--dataset=name|"
               "--graph=file] [options]\n"
               "  stats                      dataset statistics\n"
               "  compat --u=A --v=B         pair compatibility verdicts\n"
               "  team --skills=1,2,3        form a team [--relation=spm]\n"
               "       [--algorithm=lcmd]    lcmd|lcmc|random\n"
               "       [--topk=K]            emit the K best teams\n"
               "       [--shards=S]          sharded engine with S workers\n"
               "                             (alias: form; prints a comm\n"
               "                             summary; teams bit-identical)\n"
               "       [--shard-strategy=hash]  hash|range partitioning\n"
               "  serve                      run the team-formation server\n"
               "       [--qps=50]            open-loop arrival rate\n"
               "       [--duration=5]        seconds of offered load\n"
               "       [--workers=2]         worker pool size\n"
               "       [--batch-cap=16]      max requests per shared view\n"
               "       [--seed=1]            workload seed\n"
               "       [--replay]            deterministic burst replay:\n"
               "                             prints a team digest two runs\n"
               "                             reproduce bit for bit\n"
               "       [--prewarm-frac=F]    prewarm the hottest F of\n"
               "                             holders before traffic\n"
               "       [--deadline-ms=B]     per-request SLO budget (0 = none)\n"
               "       [--shed=queue]        off|admission|queue enforcement\n"
               "       [--fault=P:S]         arm fault point P with schedule S\n"
               "                             (off|always|nth:K|every:K|p:P[:S];\n"
               "                             needs -DTFSN_FAULTS=ON)\n"
               "  export --out=F             write graph [--skills_out=G]\n"
               "global: --threads=N row-computation workers (0 = auto)\n"
               "        --cache-mb=M shared row-cache budget (default 256)\n"
               "        --compress=on|off compressed in-cache rows\n"
               "        --spill-dir=D spill evicted rows to disk under D\n"
               "        --seed-threads=N team seed-loop workers (0 = auto)\n"
               "        --eval-path=auto|view|oracle team evaluation path\n");
  return 1;
}

Dataset LoadInput(const Flags& flags) {
  DatasetOptions options;
  options.scale = flags.GetDouble("scale", 1.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));
  if (flags.Has("graph")) {
    auto ds = LoadDatasetFromEdgeList(
        flags.GetString("graph"),
        static_cast<uint32_t>(flags.GetInt("num_skills", 500)), options);
    ds.status().CheckOK();
    return std::move(ds).ValueOrDie();
  }
  auto ds = MakeDatasetByName(flags.GetString("dataset", "slashdot"), options);
  ds.status().CheckOK();
  return std::move(ds).ValueOrDie();
}

uint32_t ThreadsOf(const Flags& flags) {
  return static_cast<uint32_t>(flags.GetInt("threads", 1));
}

std::shared_ptr<RowCache> CacheOf(const Flags& flags) {
  RowCacheOptions options;
  // Flags normalizes --cache-mb and --cache_mb to one key.
  options.max_bytes = static_cast<size_t>(flags.GetInt("cache_mb", 256)) << 20;
  // Tiered row store knobs (see row_cache.h). Representation only: teams
  // and the serve digest are bit-identical across every setting.
  const std::string compress = flags.GetString("compress", "off");
  options.compress = compress == "on";
  if (compress != "on" && compress != "off") {
    std::fprintf(stderr, "--compress takes on|off, got '%s'\n",
                 compress.c_str());
    std::exit(1);
  }
  if (flags.Has("spill_dir")) {
    options.spill =
        std::make_shared<RowSpillStore>(flags.GetString("spill_dir"));
    if (!options.spill->ok()) {
      std::fprintf(stderr, "cannot open spill dir '%s'\n",
                   flags.GetString("spill_dir").c_str());
      std::exit(1);
    }
  }
  return std::make_shared<RowCache>(options);
}

CompatKind RelationOf(const Flags& flags) {
  CompatKind kind = CompatKind::kSPM;
  std::string name = flags.GetString("relation", "spm");
  if (!ParseCompatKind(name, &kind)) {
    std::fprintf(stderr, "unknown relation '%s'\n", name.c_str());
    std::exit(1);
  }
  return kind;
}

int CmdStats(const Flags& flags) {
  Dataset ds = LoadInput(flags);
  Table1Row row = ComputeTable1Row(ds, 2000, 1, ThreadsOf(flags));
  std::printf("dataset   : %s\n", row.dataset.c_str());
  std::printf("users     : %u\n", row.users);
  std::printf("edges     : %llu (%llu negative, %.1f%%)\n",
              static_cast<unsigned long long>(row.edges),
              static_cast<unsigned long long>(row.neg_edges),
              row.neg_fraction * 100.0);
  std::printf("diameter  : %u%s\n", row.diameter,
              row.diameter_exact ? "" : " (estimate)");
  std::printf("skills    : %u\n", row.skills);
  TriangleCensus census = CountTriangles(ds.graph);
  std::printf("triangles : %llu (%.1f%% balanced)\n",
              static_cast<unsigned long long>(census.total()),
              census.balance_ratio() * 100.0);
  std::printf("balanced  : %s\n",
              CheckBalance(ds.graph).balanced ? "yes" : "no");
  return 0;
}

int CmdCompat(const Flags& flags) {
  if (!flags.Has("u") || !flags.Has("v")) return Usage();
  Dataset ds = LoadInput(flags);
  NodeId u = static_cast<NodeId>(flags.GetInt("u", 0));
  NodeId v = static_cast<NodeId>(flags.GetInt("v", 0));
  if (u >= ds.graph.num_nodes() || v >= ds.graph.num_nodes()) {
    std::fprintf(stderr, "node out of range (n=%u)\n", ds.graph.num_nodes());
    return 1;
  }
  std::printf("pair (%u, %u), plain distance %u\n", u, v,
              BfsDistance(ds.graph, u, v));
  for (CompatKind kind : AllCompatKinds()) {
    if (kind == CompatKind::kSBP && ds.graph.num_nodes() > 2000) {
      std::printf("  %-4s : skipped (graph too large for exact search)\n",
                  CompatKindName(kind));
      continue;
    }
    auto oracle = MakeOracle(ds.graph, kind);
    bool ok = oracle->Compatible(u, v);
    uint32_t d = oracle->Distance(u, v);
    std::printf("  %-4s : %-12s distance %s\n", CompatKindName(kind),
                ok ? "compatible" : "incompatible",
                d == kUnreachable ? "inf" : std::to_string(d).c_str());
  }
  return 0;
}

int CmdTeam(const Flags& flags) {
  if (!flags.Has("skills")) return Usage();
  Dataset ds = LoadInput(flags);
  std::vector<SkillId> wanted;
  for (const std::string& tok : SplitCsv(flags.GetString("skills"))) {
    wanted.push_back(static_cast<SkillId>(std::stoul(tok)));
  }
  Task task(wanted);
  CompatKind kind = RelationOf(flags);
  const uint32_t threads = ThreadsOf(flags);
  // One shared row cache serves the index build, the greedy prefetch, and
  // the per-pair queries of the formation run.
  auto oracle = MakeOracle(ds.graph, kind, OracleParams{}, CacheOf(flags));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  SkillCompatibilityIndex index(
      oracle.get(), ds.skills,
      ds.graph.num_nodes() > 2000 ? 300 : 0, &rng, threads);
  GreedyParams params;
  params.prefetch_threads = threads == 1 ? 0 : ResolveThreads(threads);
  params.seed_threads =
      static_cast<uint32_t>(flags.GetInt("seed_threads", 1));
  std::string path = flags.GetString("eval_path", "auto");
  if (path == "view") {
    params.eval_path = GreedyEvalPath::kView;
  } else if (path == "oracle") {
    params.eval_path = GreedyEvalPath::kOracle;
  } else if (path != "auto") {
    std::fprintf(stderr, "unknown eval path '%s'\n", path.c_str());
    return 1;
  }
  std::string algorithm = flags.GetString("algorithm", "lcmd");
  if (algorithm == "lcmc") {
    params.user_policy = UserPolicy::kMostCompatible;
  } else if (algorithm == "random") {
    params.user_policy = UserPolicy::kRandom;
  } else if (algorithm != "lcmd") {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
    return 1;
  }
  params.max_seeds = static_cast<uint32_t>(flags.GetInt("max_seeds", 25));
  GreedyTeamFormer former(oracle.get(), ds.skills, &index, params);

  // --shards routes the formation through the sharded engine (bit-identical
  // teams; see README "Sharded formation"). Implies --topk=1.
  const uint32_t shards = static_cast<uint32_t>(flags.GetInt("shards", 0));
  if (shards > 0) {
    DistOptions dist_options;
    dist_options.num_shards = shards;
    const std::string strategy = flags.GetString("shard_strategy", "hash");
    if (!ParseShardStrategy(strategy, &dist_options.strategy)) {
      std::fprintf(stderr, "--shard-strategy takes hash|range, got '%s'\n",
                   strategy.c_str());
      return 1;
    }
    dist_options.oracle_factory = OracleFactoryFor(kind);
    DistributedFormer dist(ds.graph, ds.skills, &index, params, dist_options);
    FormCommStats comm;
    const Result<TeamResult> result = dist.Form(task, &rng, &comm);
    if (!result.ok()) {
      std::fprintf(stderr, "sharded formation failed: %s\n",
                   result.status().ToString().c_str());
      return 2;
    }
    if (!result->found) {
      std::printf("no compatible team found under %s\n", CompatKindName(kind));
      return 2;
    }
    std::printf("team #1 (diameter %u):", result->cost);
    for (NodeId member : result->members) std::printf(" %u", member);
    std::printf("\n");
    std::printf("comm: %u shards (%s), %" PRIu64 " steps, %" PRIu64
                " rounds, %" PRIu64 " msgs, %" PRIu64 " ctrl B, %" PRIu64
                " data B, %" PRIu64 " dropped\n",
                shards, ShardStrategyName(dist_options.strategy), comm.steps,
                comm.rounds, comm.comm.messages_sent, comm.comm.control_bytes,
                comm.comm.data_bytes, comm.comm.messages_dropped);
    return 0;
  }

  uint32_t topk = static_cast<uint32_t>(flags.GetInt("topk", 1));
  auto teams = former.FormTopK(task, topk, &rng);
  if (teams.empty()) {
    std::printf("no compatible team found under %s\n", CompatKindName(kind));
    return 2;
  }
  for (size_t rank = 0; rank < teams.size(); ++rank) {
    const TeamResult& team = teams[rank];
    std::printf("team #%zu (diameter %u):", rank + 1, team.cost);
    for (NodeId member : team.members) std::printf(" %u", member);
    std::printf("\n");
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  Dataset ds = LoadInput(flags);
  CompatKind kind = RelationOf(flags);
  const uint32_t threads = ThreadsOf(flags);
  auto cache = CacheOf(flags);
  Rng index_rng(static_cast<uint64_t>(flags.GetInt("seed", 1)) + 1);
  auto index_oracle = MakeOracle(ds.graph, kind, OracleParams{}, cache);
  SkillCompatibilityIndex index(
      index_oracle.get(), ds.skills,
      ds.graph.num_nodes() > 2000 ? 300 : 0, &index_rng, threads);

  serve::ServerOptions options;
  options.workers =
      std::max<uint32_t>(1, static_cast<uint32_t>(flags.GetInt("workers", 2)));
  options.batch.max_batch = std::max<uint32_t>(
      1, static_cast<uint32_t>(flags.GetInt("batch_cap", 16)));
  options.greedy.max_seeds =
      static_cast<uint32_t>(flags.GetInt("max_seeds", 16));
  options.greedy.skill_policy = SkillPolicy::kLeastCompatible;
  // The global --threads knob parallelizes row production inside each
  // batch's StreamRows prewarm (0 = hardware concurrency / TFSN_THREADS).
  options.view_build_threads = threads;

  // Overload-control knobs. --shed picks how far enforcement goes;
  // --deadline-ms stamps the SLO budget onto every generated request.
  const std::string shed = flags.GetString("shed", "queue");
  if (shed == "off") {
    options.deadline.shed = serve::ShedMode::kOff;
  } else if (shed == "admission") {
    options.deadline.shed = serve::ShedMode::kAdmission;
  } else if (shed == "queue") {
    options.deadline.shed = serve::ShedMode::kQueue;
  } else {
    std::fprintf(stderr, "--shed takes off|admission|queue, got '%s'\n",
                 shed.c_str());
    return 1;
  }
  const double deadline_ms = flags.GetDouble("deadline_ms", 0.0);
  if (deadline_ms < 0) {
    std::fprintf(stderr, "--deadline-ms must be >= 0\n");
    return 1;
  }

  // Deterministic fault injection: every --fault=point:schedule pair arms
  // one registered point (the schedule grammar is ParseSchedule's). The
  // registry exists in every build, but the TFSN_FAULT_POINT call sites
  // only evaluate it when the library was compiled with -DTFSN_FAULTS=ON —
  // arming points in a normal build would silently test nothing, so that
  // is a hard error.
  std::vector<std::string> armed_points;
  if (flags.Has("fault")) {
    if (!kFaultsEnabled) {
      std::fprintf(stderr,
                   "--fault requires a -DTFSN_FAULTS=ON build; this binary "
                   "compiled the fault points out\n");
      return 2;
    }
    for (const std::string& spec : SplitCsv(flags.GetString("fault"))) {
      const size_t colon = spec.find(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= spec.size()) {
        std::fprintf(stderr, "--fault takes point:schedule, got '%s'\n",
                     spec.c_str());
        return 1;
      }
      const std::string point = spec.substr(0, colon);
      FaultSchedule schedule;
      if (!FaultRegistry::ParseSchedule(spec.substr(colon + 1), &schedule)) {
        std::fprintf(stderr, "--fault: bad schedule in '%s'\n", spec.c_str());
        return 1;
      }
      FaultRegistry::Instance().Arm(point, schedule);
      armed_points.push_back(point);
    }
  }

  const double qps = flags.GetDouble("qps", 50.0);
  const double duration = flags.GetDouble("duration", 5.0);
  const bool replay = flags.GetBool("replay");
  // qps/duration pace the open loop and (absent --requests) size the
  // stream; a replay with an explicit --requests uses neither.
  if ((qps <= 0 || duration <= 0) && !(replay && flags.Has("requests"))) {
    std::fprintf(stderr, "serve needs --qps > 0 and --duration > 0\n");
    return 1;
  }

  serve::WorkloadOptions wl;
  wl.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  wl.task_size = static_cast<uint32_t>(flags.GetInt("task_size", 3));
  wl.zipf_exponent = flags.GetDouble("zipf", 1.0);
  wl.num_requests = flags.Has("requests")
                        ? static_cast<uint32_t>(flags.GetInt("requests", 0))
                        : static_cast<uint32_t>(qps * duration);
  if (wl.num_requests == 0) {
    std::fprintf(stderr, "serve: empty request stream\n");
    return 1;
  }
  options.queue_capacity = replay ? wl.num_requests + 1 : 1024;
  std::vector<serve::TeamRequest> requests =
      serve::GenerateRequests(ds.skills, wl);
  if (deadline_ms > 0) {
    for (serve::TeamRequest& req : requests) {
      req.deadline_us = static_cast<uint64_t>(deadline_ms * 1000.0);
    }
  }

  // Tier-2 prewarm: bulk-compute the Zipf-hot holders' rows into the
  // shared cache before the server opens (the index oracle shares the
  // cache and the default params, so its keys match the workers').
  const double prewarm_frac = flags.GetDouble("prewarm_frac", 0.0);
  if (prewarm_frac > 0) {
    serve::PrewarmOptions pw;
    pw.fraction = prewarm_frac;
    pw.zipf_exponent = wl.zipf_exponent;
    pw.threads = threads;
    const serve::PrewarmReport report =
        serve::PrewarmZipfHead(index_oracle.get(), ds.skills, pw);
    std::printf("prewarm   : %llu/%llu holders in %.2f s\n",
                static_cast<unsigned long long>(report.rows_prewarmed),
                static_cast<unsigned long long>(report.holders_ranked),
                report.seconds);
  }

  const RowCache::StatsSnapshot cache_before = cache->SnapshotCounters();
  serve::TeamFormationServer server(ds.graph, ds.skills, &index, kind, cache,
                                    options);
  serve::WorkloadResult run;
  if (replay) {
    // Burst replay: no pacing, no drops — the digest below is a pure
    // function of (dataset, relation, workload seed, greedy params).
    run = serve::RunBurst(&server, std::move(requests));
  } else {
    Rng arrivals(wl.seed + 0x9e37);
    run = serve::RunOpenLoop(&server, std::move(requests), qps, &arrivals);
  }
  server.Shutdown();
  const serve::ServerMetrics metrics = server.Metrics();
  const RowCache::StatsSnapshot cache_window =
      metrics.cache - cache_before;

  std::printf("served    : %llu requests (%llu dropped) in %.2f s "
              "(%.1f req/s)\n",
              static_cast<unsigned long long>(run.completed),
              static_cast<unsigned long long>(run.dropped), run.seconds,
              run.seconds > 0 ? run.completed / run.seconds : 0.0);
  if (deadline_ms > 0 || run.rejected + run.shed + run.degraded > 0) {
    std::printf("overload  : %llu rejected, %llu shed, %llu degraded, "
                "%llu unavailable\n",
                static_cast<unsigned long long>(run.rejected),
                static_cast<unsigned long long>(run.shed),
                static_cast<unsigned long long>(run.degraded),
                static_cast<unsigned long long>(run.unavailable));
  }
  std::printf("latency   : p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
              metrics.total_us.ValueAtQuantile(0.50) / 1000.0,
              metrics.total_us.ValueAtQuantile(0.95) / 1000.0,
              metrics.total_us.ValueAtQuantile(0.99) / 1000.0);
  std::printf("batching  : %llu batches, mean size %.2f (cap %u)\n",
              static_cast<unsigned long long>(metrics.batches),
              metrics.MeanBatchSize(), options.batch.max_batch);
  std::printf("row cache : %.1f%% hit rate over %llu lookups\n",
              cache_window.HitRate() * 100.0,
              static_cast<unsigned long long>(cache_window.lookups()));
  if (cache->options().compress || cache->spill() != nullptr) {
    std::printf("tiers     : %.2f MB compressed resident, %llu spill reads, "
                "%llu writes, %llu decodes (%.1f ms)\n",
                cache_window.compressed_bytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(cache_window.spill_reads),
                static_cast<unsigned long long>(cache_window.spill_writes),
                static_cast<unsigned long long>(cache_window.decodes),
                cache_window.decode_ns / 1e6);
  }
  uint64_t solved = 0;
  for (const serve::TeamResponse& resp : run.responses) {
    solved += resp.status.ok() && resp.result.found;
  }
  std::printf("solved    : %llu/%llu\n",
              static_cast<unsigned long long>(solved),
              static_cast<unsigned long long>(run.completed));
  for (const std::string& point : armed_points) {
    std::printf("fault     : %-28s fired %llu/%llu evaluations\n",
                point.c_str(),
                static_cast<unsigned long long>(
                    FaultRegistry::Instance().FireCount(point)),
                static_cast<unsigned long long>(
                    FaultRegistry::Instance().HitCount(point)));
  }
  if (replay) {
    // FNV-1a over (id, members, cost) in id order: bit-identical teams
    // <=> equal digests. Only successful, non-degraded responses are
    // mixed, so the digest is invariant under injected faults (which may
    // only cost recomputation) and comparable across shed configurations.
    Fnv1a digest;
    for (const serve::TeamResponse& resp : run.responses) {
      if (!resp.status.ok() || resp.degraded) continue;
      digest.Mix(resp.id);
      digest.Mix(resp.result.found ? resp.result.cost : ~0ull);
      for (NodeId member : resp.result.members) digest.Mix(member);
    }
    std::printf("digest    : %016llx\n",
                static_cast<unsigned long long>(digest.digest()));
  }
  return 0;
}

int CmdExport(const Flags& flags) {
  if (!flags.Has("out")) return Usage();
  Dataset ds = LoadInput(flags);
  WriteEdgeList(ds.graph, flags.GetString("out")).CheckOK();
  std::printf("wrote %s\n", flags.GetString("out").c_str());
  if (flags.Has("skills_out")) {
    WriteSkills(ds.skills, flags.GetString("skills_out")).CheckOK();
    std::printf("wrote %s\n", flags.GetString("skills_out").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tfsn::Flags flags(argc, argv);
  if (flags.passthrough().empty()) return Usage();
  const std::string& command = flags.passthrough()[0];
  if (command == "stats") return CmdStats(flags);
  if (command == "compat") return CmdCompat(flags);
  if (command == "team" || command == "form") return CmdTeam(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "export") return CmdExport(flags);
  return Usage();
}
