// Scenario: assembling a hiring committee in a polarized organization.
//
// The org has two informal camps (a planted two-faction signed network with
// some noise). A committee needs one member per required competence. We
// compare (a) classic unsigned team formation that ignores conflicts with
// (b) signed-aware formation under increasingly strict compatibility — and
// show how often the unsigned committee would seat open antagonists
// together (the paper's Table 3 phenomenon on a concrete story).
//
//   ./build/examples/hiring_committee [--members=200] [--tasks=30]

#include <cstdio>

#include "src/tfsn.h"

int main(int argc, char** argv) {
  using namespace tfsn;
  Flags flags(argc, argv);
  const uint32_t n = static_cast<uint32_t>(flags.GetInt("members", 200));
  const uint32_t num_tasks = static_cast<uint32_t>(flags.GetInt("tasks", 30));

  // Two camps; 10% of relations defy the camp structure.
  Rng rng(11);
  SignedGraph org = PlantedPartitionSigned(n, n * 5, /*noise=*/0.10, &rng);
  std::printf("organization: %s, balanced: %s\n", org.ToString().c_str(),
              CheckBalance(org).balanced ? "yes" : "no (noise)");
  TriangleCensus census = CountTriangles(org);
  std::printf("triangle balance ratio: %.2f\n", census.balance_ratio());

  // Competences: 30, Zipf-distributed (chairing is common, legal is rare),
  // so rare competences often live in one camp only.
  ZipfSkillParams sp;
  sp.num_skills = 30;
  sp.mean_skills_per_user = 1.5;
  SkillAssignment skills = ZipfSkills(n, sp, &rng);

  std::vector<Task> tasks = RandomTasks(skills, 6, num_tasks, &rng);

  // (a) Unsigned committee: ignore conflicts altogether.
  uint32_t unsigned_found = 0, unsigned_with_foes = 0;
  SignedGraph unsigned_org = IgnoreSigns(org);
  auto nne = MakeOracle(org, CompatKind::kNNE);
  for (const Task& task : tasks) {
    UnsignedTeamResult team = RarestFirst(unsigned_org, skills, task);
    if (!team.found) continue;
    ++unsigned_found;
    if (!TeamCompatible(nne.get(), team.members)) ++unsigned_with_foes;
  }
  std::printf(
      "\nunsigned RarestFirst: %u/%u committees formed, %u contain direct "
      "antagonists\n",
      unsigned_found, num_tasks, unsigned_with_foes);

  // (b) Signed-aware committees per relation.
  std::printf("\nsigned-aware formation (LCMD):\n");
  TextTable table({"relation", "formed %", "avg diameter"});
  for (CompatKind kind : {CompatKind::kNNE, CompatKind::kSBPH,
                          CompatKind::kSPO, CompatKind::kSPM,
                          CompatKind::kSPA}) {
    auto oracle = MakeOracle(org, kind);
    Rng index_rng(13);
    SkillCompatibilityIndex index(oracle.get(), skills, 0, &index_rng);
    GreedyParams params;
    params.max_seeds = 10;
    GreedyTeamFormer former(oracle.get(), skills, &index, params);
    uint32_t formed = 0;
    double diameter_sum = 0;
    Rng run_rng(17);
    for (const Task& task : tasks) {
      TeamResult team = former.Form(task, &run_rng);
      if (team.found) {
        ++formed;
        diameter_sum += team.cost;
      }
    }
    table.AddRow({CompatKindName(kind),
                  TextTable::Fmt(100.0 * formed / num_tasks, 0),
                  TextTable::Fmt(formed ? diameter_sum / formed : 0, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\nIn a polarized org, stricter compatibility can only staff\n"
      "committees whose competences co-exist inside one camp, so the\n"
      "formation rate drops from NNE to SPA — the price of guaranteed\n"
      "harmony.\n");
  return 0;
}
