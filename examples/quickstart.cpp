// Quickstart: build a signed network, check who can work with whom, and
// form a compatible team for a task.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/tfsn.h"

int main() {
  using namespace tfsn;

  // 1. A signed social network: positive edges are friendships, negative
  //    edges are conflicts. Ids: 0=Ana 1=Bo 2=Cy 3=Di 4=Eve 5=Fil.
  const char* names[] = {"Ana", "Bo", "Cy", "Di", "Eve", "Fil"};
  SignedGraphBuilder builder(6);
  builder.AddEdge(0, 1, Sign::kPositive).CheckOK();   // Ana ~ Bo
  builder.AddEdge(1, 2, Sign::kPositive).CheckOK();   // Bo ~ Cy
  builder.AddEdge(2, 3, Sign::kPositive).CheckOK();   // Cy ~ Di
  builder.AddEdge(0, 4, Sign::kNegative).CheckOK();   // Ana x Eve
  builder.AddEdge(4, 5, Sign::kPositive).CheckOK();   // Eve ~ Fil
  builder.AddEdge(1, 5, Sign::kPositive).CheckOK();   // Bo ~ Fil
  SignedGraph graph = std::move(builder.Build()).ValueOrDie();
  std::printf("network: %s\n", graph.ToString().c_str());

  // 2. Skills. 0=backend 1=frontend 2=design.
  auto skills = std::move(SkillAssignment::Create(
                              {{0}, {1}, {0, 2}, {2}, {1}, {2}}, 3))
                    .ValueOrDie();

  // 3. Compatibility: is Ana compatible with Eve? With Di?
  auto oracle = MakeOracle(graph, CompatKind::kSPM);
  std::printf("\ncompatibility under %s:\n", CompatKindName(oracle->kind()));
  for (NodeId other : {4u, 3u}) {
    std::printf("  Ana vs %-3s : %s (distance %u)\n", names[other],
                oracle->Compatible(0, other) ? "compatible" : "INCOMPATIBLE",
                oracle->Distance(0, other));
  }

  // 4. Form a team covering {backend, frontend, design} with the LCMD
  //    algorithm (least-compatible skill first, min-distance user).
  Rng rng(7);
  SkillCompatibilityIndex index(oracle.get(), skills, /*sample_sources=*/0,
                                &rng);
  GreedyParams params;  // defaults are LCMD
  GreedyTeamFormer former(oracle.get(), skills, &index, params);
  Task task({0, 1, 2});
  TeamResult team = former.Form(task, &rng);

  if (!team.found) {
    std::printf("\nno compatible team exists for this task\n");
    return 1;
  }
  std::printf("\nteam found (diameter %u):\n", team.cost);
  for (NodeId member : team.members) {
    std::printf("  %-3s with skills:", names[member]);
    for (SkillId s : skills.SkillsOf(member)) {
      const char* skill_names[] = {"backend", "frontend", "design"};
      std::printf(" %s", skill_names[s]);
    }
    std::printf("\n");
  }

  // 5. Sanity: the team covers the task and is pairwise compatible.
  std::printf("\ncovers task: %s, pairwise compatible: %s\n",
              TeamCoversTask(skills, task, team.members) ? "yes" : "no",
              TeamCompatible(oracle.get(), team.members) ? "yes" : "no");
  return 0;
}
