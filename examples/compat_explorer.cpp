// Interactive-style explorer: inspect the compatibility of node pairs in a
// signed network under every relation, with witness paths.
//
//   ./build/examples/compat_explorer --dataset=slashdot --pairs=5
//   ./build/examples/compat_explorer --graph=my.edges --u=3 --v=17

#include <cstdio>
#include <string>

#include "src/tfsn.h"

namespace {

void ExplainPair(const tfsn::SignedGraph& g, tfsn::NodeId u, tfsn::NodeId v) {
  using namespace tfsn;
  std::printf("\n(%u, %u): plain shortest-path distance %u\n", u, v,
              BfsDistance(g, u, v));
  if (auto sign = g.EdgeSign(u, v)) {
    std::printf("  direct edge: %s\n",
                *sign == Sign::kPositive ? "positive" : "NEGATIVE");
  }
  // Signed shortest-path counts (Algorithm 1).
  SignedBfsResult counts = SignedShortestPathCount(g, u);
  std::printf("  shortest paths: %llu positive, %llu negative\n",
              static_cast<unsigned long long>(counts.num_pos[v]),
              static_cast<unsigned long long>(counts.num_neg[v]));
  // Verdict per relation.
  std::printf("  verdicts:");
  for (CompatKind kind : AllCompatKinds()) {
    if (kind == CompatKind::kSBP && g.num_nodes() > 2000) continue;
    auto oracle = MakeOracle(g, kind);
    std::printf(" %s=%s", CompatKindName(kind),
                oracle->Compatible(u, v) ? "yes" : "no");
  }
  std::printf("\n");
  // Balanced-path witness from the exact engine (small graphs).
  if (g.num_nodes() <= 2000 && u != v) {
    SbpExactSearch search(g);
    SbpPairResult r = search.ShortestBalancedPath(u, v, Sign::kPositive);
    if (r.length) {
      std::printf("  balanced positive path witness (length %u):", *r.length);
      for (NodeId x : r.witness) std::printf(" %u", x);
      std::printf("\n");
    } else {
      std::printf("  no structurally balanced positive path%s\n",
                  r.exhausted ? " found within budget" : " exists");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tfsn;
  Flags flags(argc, argv);

  SignedGraph graph;
  if (flags.Has("graph")) {
    auto loaded = LoadEdgeList(flags.GetString("graph"));
    loaded.status().CheckOK();
    graph = std::move(loaded).ValueOrDie();
  } else {
    DatasetOptions options;
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 2020));
    auto ds = MakeDatasetByName(flags.GetString("dataset", "slashdot"),
                                options);
    ds.status().CheckOK();
    graph = std::move(ds->graph);
  }
  std::printf("graph: %s\n", graph.ToString().c_str());
  TriangleCensus census = CountTriangles(graph);
  std::printf("triangles: %llu balanced / %llu total (ratio %.2f)\n",
              static_cast<unsigned long long>(census.balanced()),
              static_cast<unsigned long long>(census.total()),
              census.balance_ratio());
  std::printf("whole graph structurally balanced: %s\n",
              CheckBalance(graph).balanced ? "yes" : "no");

  if (flags.Has("u") && flags.Has("v")) {
    ExplainPair(graph, static_cast<NodeId>(flags.GetInt("u", 0)),
                static_cast<NodeId>(flags.GetInt("v", 1)));
    return 0;
  }
  // Otherwise explain a few random pairs.
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 5)));
  int64_t pairs = flags.GetInt("pairs", 4);
  for (int64_t i = 0; i < pairs; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(graph.num_nodes()));
    if (u == v) continue;
    ExplainPair(graph, u, v);
  }
  return 0;
}
