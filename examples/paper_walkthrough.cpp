// A guided tour of the paper's worked examples and claims, executed live:
//   1. structural-balance premises ("the enemy of my enemy is my friend");
//   2. Figure 1(a): a pair that is SBP- but not SP-compatible;
//   3. Figure 1(b): why balanced shortest paths lack the prefix property,
//      and how the SBPH heuristic therefore under-approximates SBP;
//   4. Proposition 3.5: the inclusion chain, verified on a random graph;
//   5. Theorem 2.2 in practice: exact-solver cost growth.
//
//   ./build/examples/paper_walkthrough

#include <cstdio>

#include "src/tfsn.h"

namespace {

using namespace tfsn;

// Figure 1(a) of the paper. Node order: u x1 x2 x3 x4 v.
SignedGraph Figure1a() {
  SignedGraphBuilder b(6);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();  // u  - x1
  b.AddEdge(1, 5, Sign::kPositive).CheckOK();  // x1 - v
  b.AddEdge(0, 2, Sign::kPositive).CheckOK();  // u  - x2
  b.AddEdge(2, 1, Sign::kPositive).CheckOK();  // x2 - x1
  b.AddEdge(2, 3, Sign::kNegative).CheckOK();  // x2 - x3
  b.AddEdge(3, 4, Sign::kNegative).CheckOK();  // x3 - x4
  b.AddEdge(4, 5, Sign::kPositive).CheckOK();  // x4 - v
  return std::move(b.Build()).ValueOrDie();
}

// Figure 1(b). Node order: u x1 x2 x3 x4 x5 v.
SignedGraph Figure1b() {
  SignedGraphBuilder b(7);
  b.AddEdge(0, 1, Sign::kPositive).CheckOK();
  b.AddEdge(1, 2, Sign::kPositive).CheckOK();
  b.AddEdge(2, 4, Sign::kPositive).CheckOK();
  b.AddEdge(0, 3, Sign::kPositive).CheckOK();
  b.AddEdge(3, 4, Sign::kPositive).CheckOK();
  b.AddEdge(3, 5, Sign::kNegative).CheckOK();
  b.AddEdge(4, 5, Sign::kPositive).CheckOK();
  b.AddEdge(5, 6, Sign::kPositive).CheckOK();
  return std::move(b.Build()).ValueOrDie();
}

void Premises() {
  std::printf("1) Structural-balance premises as path signs\n");
  SignedGraphBuilder b(3);
  b.AddEdge(0, 1, Sign::kNegative).CheckOK();
  b.AddEdge(1, 2, Sign::kNegative).CheckOK();
  SignedGraph g = std::move(b.Build()).ValueOrDie();
  std::vector<NodeId> path{0, 1, 2};
  std::printf("   enemy(0,1) + enemy(1,2): path sign = %+d  "
              "(the enemy of my enemy is my friend)\n",
              static_cast<int>(*g.PathSign(path)));
}

void Fig1a() {
  std::printf("\n2) Figure 1(a): SBP-compatible but not SP-compatible\n");
  SignedGraph g = Figure1a();
  const NodeId u = 0, v = 5;
  SignedBfsResult counts = SignedShortestPathCount(g, u);
  std::printf("   shortest u-v paths: %llu positive, %llu negative "
              "(length %u)\n",
              static_cast<unsigned long long>(counts.num_pos[v]),
              static_cast<unsigned long long>(counts.num_neg[v]),
              counts.dist[v]);
  std::printf("   SPO says: %s\n",
              MakeOracle(g, CompatKind::kSPO)->Compatible(u, v)
                  ? "compatible" : "incompatible");
  SbpExactSearch search(g);
  auto r = search.ShortestBalancedPath(u, v, Sign::kPositive);
  std::printf("   SBP witness:");
  for (NodeId x : r.witness) std::printf(" %u", x);
  std::printf("  (positive and structurally balanced)\n");
  std::vector<NodeId> shortcut{0, 2, 1, 5};
  std::printf("   the shorter positive path (u,x2,x1,v) is balanced: %s "
              "(chord (u,x1) is negative)\n",
              IsPathBalanced(g, shortcut) ? "yes" : "NO");
}

void Fig1b() {
  std::printf("\n3) Figure 1(b): no prefix property for balanced paths\n");
  SignedGraph g = Figure1b();
  const NodeId u = 0, x4 = 4, v = 6;
  SbpExactSearch search(g);
  auto to_x4 = search.ShortestBalancedPath(u, x4, Sign::kPositive);
  std::printf("   shortest balanced u-x4 path:");
  for (NodeId x : to_x4.witness) std::printf(" %u", x);
  auto to_v = search.ShortestBalancedPath(u, v, Sign::kPositive);
  std::printf("\n   shortest balanced u-v  path:");
  for (NodeId x : to_v.witness) std::printf(" %u", x);
  std::printf("\n   the u-v path passes x4 but NOT through the shortest "
              "balanced u-x4 path.\n");
  SbphResult h = SbphFromSource(g, u);
  std::printf("   SBPH (prefix-property heuristic) reaches v positively: %s"
              " — the heuristic miss the paper predicts\n",
              h.pos_dist[v] == kUnreachable ? "no" : "yes");
}

void Proposition35() {
  std::printf("\n4) Proposition 3.5 inclusion chain on a random graph\n");
  Rng rng(5);
  SignedGraph g = RandomConnectedGnm(40, 110, 0.3, &rng);
  auto count = [&](CompatKind kind) {
    auto oracle = MakeOracle(g, kind);
    uint32_t pairs = 0;
    for (NodeId a = 0; a < g.num_nodes(); ++a) {
      for (NodeId b = a + 1; b < g.num_nodes(); ++b) {
        pairs += oracle->Compatible(a, b);
      }
    }
    return pairs;
  };
  std::printf("   compatible pairs:");
  for (CompatKind kind : AllCompatKinds()) {
    std::printf(" %s=%u", CompatKindName(kind), count(kind));
  }
  std::printf("\n   (monotone along DPE ⊆ SPA ⊆ SPM ⊆ SPO ⊆ SBP ⊆ NNE)\n");
}

void Hardness() {
  std::printf("\n5) Theorem 2.2 in practice: exact-solver growth\n");
  Rng master(7);
  for (uint32_t n : {20u, 40u, 80u}) {
    Rng rng = master.Fork();
    SignedGraph g = RandomConnectedGnm(n, n * 3, 0.25, &rng);
    ZipfSkillParams sp;
    sp.num_skills = 10;
    SkillAssignment sa = ZipfSkills(n, sp, &rng);
    auto oracle = MakeOracle(g, CompatKind::kSPM);
    Task task = RandomTask(sa, 4, &rng);
    Timer timer;
    ExactResult r = SolveExact(oracle.get(), sa, task);
    std::printf("   n=%2u: %s after %llu expansions (%.3fs)\n", n,
                r.found ? "optimum found" : "infeasible",
                static_cast<unsigned long long>(r.expansions),
                timer.Seconds());
  }
  std::printf("   TFSNC is NP-hard, so production paths use the greedy\n"
              "   Algorithm 2; the exact solver is for ground truth only.\n");
}

}  // namespace

int main() {
  std::printf("=== walking through the paper's claims ===\n\n");
  Premises();
  Fig1a();
  Fig1b();
  Proposition35();
  Hardness();
  return 0;
}
