// Scenario: on-call incident response in an engineering org.
//
// When an incident needs k distinct specialties, how does the chance of
// staffing a *compatible* response team degrade with incident complexity,
// and how far apart (communication cost) do the responders end up? This is
// the paper's Figure 2(c)/(d) question asked on an Epinions-like org
// network.
//
//   ./build/examples/incident_response [--scale=0.08] [--tasks=30]

#include <cstdio>

#include "src/exp/experiments.h"
#include "src/tfsn.h"

int main(int argc, char** argv) {
  using namespace tfsn;
  Flags flags(argc, argv);

  DatasetOptions options;
  options.scale = flags.GetDouble("scale", 0.08);
  options.seed = 31;
  Dataset org = MakeEpinions(options);
  std::printf("org network: %s\n", org.graph.ToString().c_str());

  TeamExperimentOptions exp;
  exp.num_tasks = static_cast<uint32_t>(flags.GetInt("tasks", 30));
  exp.max_seeds = 10;
  exp.kinds = {CompatKind::kSPM, CompatKind::kSBPH, CompatKind::kNNE};
  exp.seed = 33;

  std::vector<uint32_t> severities{2, 4, 6, 8, 10};
  auto points = RunFig2cd(org, severities, exp);

  std::printf("\nstaffing probability by incident complexity:\n");
  std::vector<std::string> header{"relation"};
  for (uint32_t k : severities) {
    header.push_back(std::to_string(k) + " specialties");
  }
  TextTable staffed(header);
  TextTable spread(header);
  for (CompatKind kind : exp.kinds) {
    std::vector<std::string> s{CompatKindName(kind)};
    std::vector<std::string> d{CompatKindName(kind)};
    for (uint32_t k : severities) {
      for (const auto& p : points) {
        if (p.kind == kind && p.task_size == k) {
          s.push_back(TextTable::Fmt(p.solved_pct, 0) + "%");
          d.push_back(TextTable::Fmt(p.avg_diameter, 2));
        }
      }
    }
    staffed.AddRow(s);
    spread.AddRow(d);
  }
  std::fputs(staffed.ToString().c_str(), stdout);
  std::printf("\nresponder spread (team diameter):\n");
  std::fputs(spread.ToString().c_str(), stdout);

  std::printf(
      "\nReading: under the strict majority rule (SPM) big incidents may be\n"
      "unstaffable, while balance-based compatibility (SBPH) keeps nearly\n"
      "every incident staffable at a modest increase in responder spread.\n");
  return 0;
}
